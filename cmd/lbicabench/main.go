// Command lbicabench regenerates the paper's entire evaluation section:
// Figs. 4 and 5 (per-interval cache and disk load under WB, SIB and
// LBICA), Fig. 6 (LBICA's decision timeline), Fig. 7 (average latency),
// and the headline aggregates, as CSV files plus a summary on stdout.
//
// The 3 workloads × 3 schemes matrix is fanned out across a bounded
// worker pool (-workers, default GOMAXPROCS); output is byte-identical
// for every worker count, including -workers 1. Ctrl-C cancels the
// sweep at the next simulation event boundary.
//
// Usage:
//
//	lbicabench                 # everything into ./results/
//	lbicabench -out /tmp/r     # choose the output directory
//	lbicabench -fig 6          # only Fig. 6
//	lbicabench -summary        # just the headline table on stdout
//	lbicabench -workers 1      # serial baseline
//
// With -perf it instead runs the hot-path benchmark suite (kernel
// schedule/fire, cache hit/miss, queue push/merge, full-matrix end-to-end)
// and emits machine-readable JSON — the command that regenerates
// BENCH_hotpath.json:
//
//	lbicabench -perf                       # full suite, paper-scale matrix
//	lbicabench -perf -perf-filter kernel   # kernel microbenchmarks only
//	lbicabench -perf -intervals 20         # coarse, fast matrix scale
//
// -volumes runs the whole evaluation over a sharded multi-volume array
// (optionally with -route-skew for skewed routing), and
// `-perf -perf-filter shard` measures shard scaling — the command that
// regenerates BENCH_shard.json:
//
//	lbicabench -volumes 4 -summary
//	lbicabench -perf -perf-filter shard
//
// `-perf -perf-filter array` measures the array-lb controller's
// overhead on the pinned hot-shard regime (static vs controlled
// routing) — the command that regenerates BENCH_array.json — and
// `-perf -perf-filter sweep` measures the shared-warmup sweep win
// (scratch vs warm-fork on a three-scheme comparison grid), the command
// that regenerates BENCH_sweep.json. -perf-check is the CI gate around
// the committed baselines: given a comma-separated list it reruns
// exactly each baseline's benchmarks at its recorded scale and exits
// non-zero on any regression beyond the tolerance band. Baselines in
// the older before/after narrative schema (BENCH_hotpath.json) gate
// against their "after" measurements:
//
//	lbicabench -perf -perf-filter array > BENCH_array.json
//	lbicabench -perf -perf-filter sweep > BENCH_sweep.json
//	lbicabench -perf-check BENCH_array.json,BENCH_hotpath.json,BENCH_shard.json,BENCH_sweep.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lbica/internal/array"
	"lbica/internal/cli"
	"lbica/internal/experiments"
	"lbica/internal/perf"
)

func main() { cli.Main("lbicabench", run) }

// loadBaseline parses a committed perf baseline. Two on-disk schemas
// exist: the perf.Report artifact `-perf` emits (BENCH_array.json,
// BENCH_sweep.json) and the older before/after narrative
// (BENCH_hotpath.json), whose "after" measurements are the numbers the
// gate must hold. Both reduce to a perf.Report with the benchmark names
// in deterministic order.
func loadBaseline(path string) (perf.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return perf.Report{}, err
	}
	var base perf.Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&base); err == nil {
		return base, nil
	}
	var narrative struct {
		Results map[string]struct {
			After *struct {
				NsPerOp     float64 `json:"ns_per_op"`
				AllocsPerOp int64   `json:"allocs_per_op"`
				BytesPerOp  int64   `json:"bytes_per_op"`
			} `json:"after"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &narrative); err != nil || len(narrative.Results) == 0 {
		return perf.Report{}, fmt.Errorf("lbicabench: baseline %s matches neither the perf report nor the before/after schema", path)
	}
	names := make([]string, 0, len(narrative.Results))
	for name := range narrative.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		after := narrative.Results[name].After
		if after == nil {
			return perf.Report{}, fmt.Errorf("lbicabench: baseline %s entry %q has no after-measurement", path, name)
		}
		base.Results = append(base.Results, perf.Result{
			Name:        name,
			NsPerOp:     after.NsPerOp,
			AllocsPerOp: after.AllocsPerOp,
			BytesPerOp:  after.BytesPerOp,
		})
	}
	return base, nil
}

// runPerfCheck is the CI perf gate: load each committed perf baseline
// (comma-separated paths), rerun exactly its benchmarks at its recorded
// matrix scale, and fail on any breach of the tolerance band (allocs
// tight, wall time loose — see perf.Check). The fresh measurements go to
// stdout as JSON so a failing run leaves a diffable artifact.
func runPerfCheck(paths string, stdout, stderr io.Writer) error {
	var failures []error
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		base, err := loadBaseline(path)
		if err != nil {
			return err
		}
		if len(base.Results) == 0 {
			return fmt.Errorf("lbicabench: baseline %s names no benchmarks", path)
		}
		names := make([]string, len(base.Results))
		for i, r := range base.Results {
			names[i] = r.Name
		}
		fmt.Fprintf(stderr, "perf check: rerunning %d benchmarks from %s (matrix intervals %d)...\n",
			len(names), path, base.Intervals)
		cur := perf.RunExact(names, base.Intervals)
		if err := enc.Encode(cur); err != nil {
			return err
		}
		breaches := perf.Check(base, cur)
		for _, b := range breaches {
			fmt.Fprintln(stderr, "perf check: REGRESSION:", b)
		}
		if len(breaches) > 0 {
			failures = append(failures, fmt.Errorf("lbicabench: %d perf regressions against %s", len(breaches), path))
			continue
		}
		fmt.Fprintf(stderr, "perf check: all %d benchmarks within tolerance of %s\n", len(names), path)
	}
	return errors.Join(failures...)
}

// run is the testable body of main: flags in, CSV/summary out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbicabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "results", "output directory for CSV files")
		fig        = fs.Int("fig", 0, "regenerate only this figure (4, 5, 6 or 7); 0 = all")
		summary    = fs.Bool("summary", false, "print only the headline table")
		seed       = fs.Int64("seed", 1, "random seed")
		rate       = fs.Float64("rate", 1, "workload IOPS scale factor")
		workers    = fs.Int("workers", 0, "worker pool size for the matrix (0 = GOMAXPROCS, 1 = serial)")
		intervals  = fs.Int("intervals", 0, "override the per-run interval count (0 = paper scale)")
		volumes    = fs.Int("volumes", 1, "shard every matrix cell across this many independent cache+disk volumes (1 = the paper's single stack)")
		routeSkew  = fs.Float64("route-skew", 0, "router Zipf skew over volume popularity (0 = uniform routing; needs -volumes > 1)")
		perfMode   = fs.Bool("perf", false, "run the hot-path benchmark suite and emit JSON results on stdout")
		perfFilter = fs.String("perf-filter", "", "with -perf: run only benchmarks whose name contains this substring")
		perfCheck  = fs.String("perf-check", "", "comma-separated committed baseline JSONs: rerun the benchmarks each names at its recorded scale and fail on any regression beyond the tolerance band")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	if *perfCheck != "" {
		return runPerfCheck(*perfCheck, stdout, stderr)
	}
	if *perfMode {
		rep := perf.Run(*perfFilter, *intervals)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	start := time.Now()
	fmt.Fprintf(stderr, "running the 3 workloads × 3 schemes matrix...\n")
	if *volumes < 1 || *volumes > array.MaxVolumes {
		fmt.Fprintf(stderr, "lbicabench: -volumes %d outside [1, %d]\n", *volumes, array.MaxVolumes)
		return cli.ErrUsage
	}
	if *routeSkew != 0 && (*volumes < 2 || !(*routeSkew > 0 && *routeSkew <= array.MaxSkew)) {
		fmt.Fprintf(stderr, "lbicabench: -route-skew %v needs -volumes > 1 and a value in (0, %v]\n", *routeSkew, array.MaxSkew)
		return cli.ErrUsage
	}
	specs := experiments.MatrixSpecs(*seed, *rate)
	for i := range specs {
		specs[i].Intervals = *intervals
		specs[i].Volumes = *volumes
		specs[i].RouteSkew = *routeSkew
	}
	m, err := experiments.RunSpecs(ctx, specs, *workers, func(done, total int) {
		fmt.Fprintf(stderr, "  %d/%d runs done (%v)\n", done, total, time.Since(start).Round(time.Millisecond))
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "matrix done in %v\n", time.Since(start).Round(time.Millisecond))

	if *summary {
		return experiments.WriteHeadlines(stdout, experiments.ComputeHeadlines(m))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	emit := func(name string, write func(f *os.File) error) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
		return nil
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	for _, wl := range experiments.Workloads {
		if want(4) {
			if err := emit(fmt.Sprintf("fig4_%s_cache_load.csv", wl), func(f *os.File) error {
				return experiments.Fig4(m, wl).WriteCSV(f)
			}); err != nil {
				return err
			}
		}
		if want(5) {
			if err := emit(fmt.Sprintf("fig5_%s_disk_load.csv", wl), func(f *os.File) error {
				return experiments.Fig5(m, wl).WriteCSV(f)
			}); err != nil {
				return err
			}
		}
		if want(6) {
			if err := emit(fmt.Sprintf("fig6_%s_lbica_timeline.csv", wl), func(f *os.File) error {
				return experiments.WriteFig6CSV(f, experiments.Fig6(m[wl][experiments.SchemeLBICA]))
			}); err != nil {
				return err
			}
		}
	}
	if want(7) {
		if err := emit("fig7_avg_latency.csv", func(f *os.File) error {
			return experiments.WriteFig7CSV(f, experiments.Fig7(m))
		}); err != nil {
			return err
		}
	}

	if *fig == 0 {
		fmt.Fprintln(stdout, "\nheadline aggregates (LBICA improvement, positive = better):")
		if err := experiments.WriteHeadlines(stdout, experiments.ComputeHeadlines(m)); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nLBICA decision timelines:")
		for _, wl := range experiments.Workloads {
			res := m[wl][experiments.SchemeLBICA]
			fmt.Fprintf(stdout, "  %s:\n", wl)
			for _, pc := range res.Timeline {
				fmt.Fprintf(stdout, "    interval %3d: %-4s (%s)\n", pc.Interval, pc.Policy, pc.Group)
			}
		}
	}
	return nil
}
