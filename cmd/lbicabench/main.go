// Command lbicabench regenerates the paper's entire evaluation section:
// Figs. 4 and 5 (per-interval cache and disk load under WB, SIB and
// LBICA), Fig. 6 (LBICA's decision timeline), Fig. 7 (average latency),
// and the headline aggregates, as CSV files plus a summary on stdout.
//
// Usage:
//
//	lbicabench                 # everything into ./results/
//	lbicabench -out /tmp/r     # choose the output directory
//	lbicabench -fig 6          # only Fig. 6
//	lbicabench -summary        # just the headline table on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lbica/internal/experiments"
)

func main() {
	var (
		out     = flag.String("out", "results", "output directory for CSV files")
		fig     = flag.Int("fig", 0, "regenerate only this figure (4, 5, 6 or 7); 0 = all")
		summary = flag.Bool("summary", false, "print only the headline table")
		seed    = flag.Int64("seed", 1, "random seed")
		rate    = flag.Float64("rate", 1, "workload IOPS scale factor")
	)
	flag.Parse()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running the 3 workloads × 3 schemes matrix...\n")
	m := experiments.RunMatrix(*seed, *rate)
	fmt.Fprintf(os.Stderr, "matrix done in %v\n", time.Since(start).Round(time.Millisecond))

	if *summary {
		if err := experiments.WriteHeadlines(os.Stdout, experiments.ComputeHeadlines(m)); err != nil {
			fail(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	emit := func(name string, write func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := write(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	for _, wl := range experiments.Workloads {
		wl := wl
		if want(4) {
			emit(fmt.Sprintf("fig4_%s_cache_load.csv", wl), func(f *os.File) error {
				return experiments.Fig4(m, wl).WriteCSV(f)
			})
		}
		if want(5) {
			emit(fmt.Sprintf("fig5_%s_disk_load.csv", wl), func(f *os.File) error {
				return experiments.Fig5(m, wl).WriteCSV(f)
			})
		}
		if want(6) {
			emit(fmt.Sprintf("fig6_%s_lbica_timeline.csv", wl), func(f *os.File) error {
				return experiments.WriteFig6CSV(f, experiments.Fig6(m[wl][experiments.SchemeLBICA]))
			})
		}
	}
	if want(7) {
		emit("fig7_avg_latency.csv", func(f *os.File) error {
			return experiments.WriteFig7CSV(f, experiments.Fig7(m))
		})
	}

	if *fig == 0 {
		fmt.Println("\nheadline aggregates (LBICA improvement, positive = better):")
		if err := experiments.WriteHeadlines(os.Stdout, experiments.ComputeHeadlines(m)); err != nil {
			fail(err)
		}
		fmt.Println("\nLBICA decision timelines:")
		for _, wl := range experiments.Workloads {
			res := m[wl][experiments.SchemeLBICA]
			fmt.Printf("  %s:\n", wl)
			for _, pc := range res.Timeline {
				fmt.Printf("    interval %3d: %-4s (%s)\n", pc.Interval, pc.Policy, pc.Group)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lbicabench:", err)
	os.Exit(1)
}
