// Command lbicabench regenerates the paper's entire evaluation section:
// Figs. 4 and 5 (per-interval cache and disk load under WB, SIB and
// LBICA), Fig. 6 (LBICA's decision timeline), Fig. 7 (average latency),
// and the headline aggregates, as CSV files plus a summary on stdout.
//
// The 3 workloads × 3 schemes matrix is fanned out across a bounded
// worker pool (-workers, default GOMAXPROCS); output is byte-identical
// for every worker count, including -workers 1. Ctrl-C cancels the
// sweep at the next simulation event boundary.
//
// Usage:
//
//	lbicabench                 # everything into ./results/
//	lbicabench -out /tmp/r     # choose the output directory
//	lbicabench -fig 6          # only Fig. 6
//	lbicabench -summary        # just the headline table on stdout
//	lbicabench -workers 1      # serial baseline
//
// With -perf it instead runs the hot-path benchmark suite (kernel
// schedule/fire, cache hit/miss, queue push/merge, full-matrix end-to-end)
// and emits machine-readable JSON — the command that regenerates
// BENCH_hotpath.json:
//
//	lbicabench -perf                       # full suite, paper-scale matrix
//	lbicabench -perf -perf-filter kernel   # kernel microbenchmarks only
//	lbicabench -perf -intervals 20         # coarse, fast matrix scale
//
// -volumes runs the whole evaluation over a sharded multi-volume array
// (optionally with -route-skew for skewed routing), and
// `-perf -perf-filter shard` measures shard scaling — the command that
// regenerates BENCH_shard.json:
//
//	lbicabench -volumes 4 -summary
//	lbicabench -perf -perf-filter shard
//
// `-perf -perf-filter array` measures the array-lb controller's
// overhead on the pinned hot-shard regime (static vs controlled
// routing) — the command that regenerates BENCH_array.json — and
// -perf-check is the CI gate around such a committed baseline: it
// reruns exactly the baseline's benchmarks at its recorded scale and
// exits non-zero on any regression beyond the tolerance band:
//
//	lbicabench -perf -perf-filter array > BENCH_array.json
//	lbicabench -perf-check BENCH_array.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lbica/internal/array"
	"lbica/internal/cli"
	"lbica/internal/experiments"
	"lbica/internal/perf"
)

func main() { cli.Main("lbicabench", run) }

// runPerfCheck is the CI perf gate: load a committed perf baseline,
// rerun exactly its benchmarks at its recorded matrix scale, and fail on
// any breach of the tolerance band (allocs tight, wall time loose — see
// perf.Check). The fresh measurements go to stdout as JSON so a failing
// run leaves a diffable artifact.
func runPerfCheck(path string, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var base perf.Report
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&base); err != nil {
		return fmt.Errorf("lbicabench: parsing baseline %s: %w", path, err)
	}
	if len(base.Results) == 0 {
		return fmt.Errorf("lbicabench: baseline %s names no benchmarks", path)
	}
	names := make([]string, len(base.Results))
	for i, r := range base.Results {
		names[i] = r.Name
	}
	fmt.Fprintf(stderr, "perf check: rerunning %d benchmarks from %s (matrix intervals %d)...\n",
		len(names), path, base.Intervals)
	cur := perf.RunExact(names, base.Intervals)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cur); err != nil {
		return err
	}
	breaches := perf.Check(base, cur)
	for _, b := range breaches {
		fmt.Fprintln(stderr, "perf check: REGRESSION:", b)
	}
	if len(breaches) > 0 {
		return fmt.Errorf("lbicabench: %d perf regressions against %s", len(breaches), path)
	}
	fmt.Fprintf(stderr, "perf check: all %d benchmarks within tolerance of %s\n", len(names), path)
	return nil
}

// run is the testable body of main: flags in, CSV/summary out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbicabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "results", "output directory for CSV files")
		fig        = fs.Int("fig", 0, "regenerate only this figure (4, 5, 6 or 7); 0 = all")
		summary    = fs.Bool("summary", false, "print only the headline table")
		seed       = fs.Int64("seed", 1, "random seed")
		rate       = fs.Float64("rate", 1, "workload IOPS scale factor")
		workers    = fs.Int("workers", 0, "worker pool size for the matrix (0 = GOMAXPROCS, 1 = serial)")
		intervals  = fs.Int("intervals", 0, "override the per-run interval count (0 = paper scale)")
		volumes    = fs.Int("volumes", 1, "shard every matrix cell across this many independent cache+disk volumes (1 = the paper's single stack)")
		routeSkew  = fs.Float64("route-skew", 0, "router Zipf skew over volume popularity (0 = uniform routing; needs -volumes > 1)")
		perfMode   = fs.Bool("perf", false, "run the hot-path benchmark suite and emit JSON results on stdout")
		perfFilter = fs.String("perf-filter", "", "with -perf: run only benchmarks whose name contains this substring")
		perfCheck  = fs.String("perf-check", "", "rerun the benchmarks named in this committed baseline JSON at its recorded scale and fail on any regression beyond the tolerance band")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	if *perfCheck != "" {
		return runPerfCheck(*perfCheck, stdout, stderr)
	}
	if *perfMode {
		rep := perf.Run(*perfFilter, *intervals)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	start := time.Now()
	fmt.Fprintf(stderr, "running the 3 workloads × 3 schemes matrix...\n")
	if *volumes < 1 || *volumes > array.MaxVolumes {
		fmt.Fprintf(stderr, "lbicabench: -volumes %d outside [1, %d]\n", *volumes, array.MaxVolumes)
		return cli.ErrUsage
	}
	if *routeSkew != 0 && (*volumes < 2 || !(*routeSkew > 0 && *routeSkew <= array.MaxSkew)) {
		fmt.Fprintf(stderr, "lbicabench: -route-skew %v needs -volumes > 1 and a value in (0, %v]\n", *routeSkew, array.MaxSkew)
		return cli.ErrUsage
	}
	specs := experiments.MatrixSpecs(*seed, *rate)
	for i := range specs {
		specs[i].Intervals = *intervals
		specs[i].Volumes = *volumes
		specs[i].RouteSkew = *routeSkew
	}
	m, err := experiments.RunSpecs(ctx, specs, *workers, func(done, total int) {
		fmt.Fprintf(stderr, "  %d/%d runs done (%v)\n", done, total, time.Since(start).Round(time.Millisecond))
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "matrix done in %v\n", time.Since(start).Round(time.Millisecond))

	if *summary {
		return experiments.WriteHeadlines(stdout, experiments.ComputeHeadlines(m))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	emit := func(name string, write func(f *os.File) error) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
		return nil
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	for _, wl := range experiments.Workloads {
		if want(4) {
			if err := emit(fmt.Sprintf("fig4_%s_cache_load.csv", wl), func(f *os.File) error {
				return experiments.Fig4(m, wl).WriteCSV(f)
			}); err != nil {
				return err
			}
		}
		if want(5) {
			if err := emit(fmt.Sprintf("fig5_%s_disk_load.csv", wl), func(f *os.File) error {
				return experiments.Fig5(m, wl).WriteCSV(f)
			}); err != nil {
				return err
			}
		}
		if want(6) {
			if err := emit(fmt.Sprintf("fig6_%s_lbica_timeline.csv", wl), func(f *os.File) error {
				return experiments.WriteFig6CSV(f, experiments.Fig6(m[wl][experiments.SchemeLBICA]))
			}); err != nil {
				return err
			}
		}
	}
	if want(7) {
		if err := emit("fig7_avg_latency.csv", func(f *os.File) error {
			return experiments.WriteFig7CSV(f, experiments.Fig7(m))
		}); err != nil {
			return err
		}
	}

	if *fig == 0 {
		fmt.Fprintln(stdout, "\nheadline aggregates (LBICA improvement, positive = better):")
		if err := experiments.WriteHeadlines(stdout, experiments.ComputeHeadlines(m)); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nLBICA decision timelines:")
		for _, wl := range experiments.Workloads {
			res := m[wl][experiments.SchemeLBICA]
			fmt.Fprintf(stdout, "  %s:\n", wl)
			for _, pc := range res.Timeline {
				fmt.Fprintf(stdout, "    interval %3d: %-4s (%s)\n", pc.Interval, pc.Policy, pc.Group)
			}
		}
	}
	return nil
}
