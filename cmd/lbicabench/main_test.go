package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbica/internal/cli"
	"lbica/internal/perf"
)

// Smoke: a reduced-scale sweep must emit every figure CSV with content
// plus the headline table.
func TestRunEmitsFigures(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-out", dir, "-intervals", "10", "-workers", "2"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	for _, name := range []string{
		"fig4_tpcc_cache_load.csv", "fig4_mail_cache_load.csv", "fig4_web_cache_load.csv",
		"fig5_tpcc_disk_load.csv", "fig6_mail_lbica_timeline.csv", "fig7_avg_latency.csv",
	} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if lines := strings.Count(string(b), "\n"); lines < 2 {
			t.Errorf("%s has %d lines — header only?", name, lines)
		}
	}
	if !strings.Contains(out.String(), "headline aggregates") {
		t.Errorf("stdout missing headline table:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "9/9 runs done") {
		t.Errorf("stderr missing progress lines:\n%s", errBuf.String())
	}
}

func TestRunSummaryOnly(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(), []string{"-summary", "-intervals", "8"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "| workload |") || !strings.Contains(got, "average") {
		t.Errorf("headline table malformed:\n%s", got)
	}
	if strings.Contains(got, "wrote ") {
		t.Error("-summary still wrote CSV files")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var out, errBuf strings.Builder
	if err := run(ctx, []string{"-summary", "-intervals", "5"}, &out, &errBuf); err == nil {
		t.Error("cancelled context returned nil error")
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errBuf strings.Builder
	// flag.ErrHelp is the success-exit sentinel cli.Main maps to code 0.
	if err := run(t.Context(), []string{"-h"}, &out, &errBuf); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "Usage of lbicabench") {
		t.Errorf("-h did not print usage:\n%s", errBuf.String())
	}
}

// Smoke: -perf emits a machine-readable JSON report for the filtered
// benchmark set without touching the figure pipeline.
func TestRunPerfMode(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(), []string{"-perf", "-perf-filter", "schedule-cancel"}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run -perf: %v (stderr: %s)", err, errBuf.String())
	}
	var rep perf.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not a perf report: %v\n%s", err, out.String())
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "kernel/schedule-cancel" {
		t.Fatalf("unexpected results: %+v", rep.Results)
	}
	if rep.Results[0].NsPerOp <= 0 {
		t.Errorf("degenerate measurement: %+v", rep.Results[0])
	}
}

// -perf-check reruns a committed baseline's benchmarks and gates on the
// tolerance band: a self-consistent baseline passes, an absurdly fast
// one fails with named regressions, and a missing or malformed baseline
// file is an error before any benchmark runs.
func TestRunPerfCheck(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep perf.Report) string {
		t.Helper()
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Generous baseline for a cheap microbenchmark: must pass.
	pass := write("pass.json", perf.Report{Intervals: 1, Results: []perf.Result{
		{Name: "kernel/schedule-cancel", NsPerOp: 1e9, AllocsPerOp: 1 << 20},
	}})
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-perf-check", pass}, &out, &errBuf); err != nil {
		t.Fatalf("generous baseline failed: %v (stderr: %s)", err, errBuf.String())
	}
	var rep perf.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not a perf report: %v\n%s", err, out.String())
	}
	if !strings.Contains(errBuf.String(), "within tolerance") {
		t.Errorf("pass verdict missing from stderr:\n%s", errBuf.String())
	}

	// Unreachable baseline plus a vanished benchmark: must fail and name
	// both breaches.
	fail := write("fail.json", perf.Report{Intervals: 1, Results: []perf.Result{
		{Name: "kernel/schedule-cancel", NsPerOp: 1e-6, AllocsPerOp: 0},
		{Name: "no/such-bench", NsPerOp: 1, AllocsPerOp: 1},
	}})
	out.Reset()
	errBuf.Reset()
	if err := run(t.Context(), []string{"-perf-check", fail}, &out, &errBuf); err == nil {
		t.Fatal("regressed baseline passed the perf check")
	}
	if s := errBuf.String(); !strings.Contains(s, "kernel/schedule-cancel") || !strings.Contains(s, "no/such-bench") {
		t.Errorf("breaches not named on stderr:\n%s", s)
	}

	if err := run(t.Context(), []string{"-perf-check", filepath.Join(dir, "absent.json")}, &out, &errBuf); err == nil {
		t.Error("missing baseline file passed")
	}
	empty := write("empty.json", perf.Report{})
	if err := run(t.Context(), []string{"-perf-check", empty}, &out, &errBuf); err == nil {
		t.Error("baseline naming no benchmarks passed")
	}
}

// -perf-check takes a comma-separated baseline list, checking each in
// turn, and understands the before/after narrative schema
// (BENCH_hotpath.json): the "after" measurements are the gated numbers.
func TestRunPerfCheckMultiBaselineAndNarrative(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rep, err := json.Marshal(perf.Report{Intervals: 1, Results: []perf.Result{
		{Name: "kernel/schedule-cancel", NsPerOp: 1e9, AllocsPerOp: 1 << 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	report := write("report.json", string(rep))
	narrative := write("narrative.json", `{
		"benchmark": "hot-path overhaul",
		"command": "lbicabench -perf",
		"results": {
			"kernel/schedule-fire": {
				"before": {"ns_per_op": 1, "allocs_per_op": 1},
				"after": {"ns_per_op": 1e9, "allocs_per_op": 1048576},
				"speedup": 1.0
			}
		}
	}`)

	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-perf-check", report + "," + narrative}, &out, &errBuf); err != nil {
		t.Fatalf("generous baseline list failed: %v (stderr: %s)", err, errBuf.String())
	}
	if got := strings.Count(errBuf.String(), "within tolerance"); got != 2 {
		t.Errorf("want 2 pass verdicts (one per baseline), got %d:\n%s", got, errBuf.String())
	}

	// A regression in any listed baseline fails the whole gate — the
	// narrative's unreachable "after" must breach even though the report
	// baseline passes.
	regressed := write("regressed.json", `{
		"results": {
			"kernel/schedule-fire": {
				"before": {"ns_per_op": 1, "allocs_per_op": 1},
				"after": {"ns_per_op": 1e-6, "allocs_per_op": 0}
			}
		}
	}`)
	errBuf.Reset()
	if err := run(t.Context(), []string{"-perf-check", report + "," + regressed}, &out, &errBuf); err == nil {
		t.Fatal("regressed narrative baseline passed the multi-baseline gate")
	}

	// A narrative entry without an after-measurement is malformed.
	noAfter := write("no_after.json", `{"results": {"kernel/schedule-fire": {"before": {"ns_per_op": 1}}}}`)
	if err := run(t.Context(), []string{"-perf-check", noAfter}, &out, &errBuf); err == nil {
		t.Error("narrative baseline without after-measurements passed")
	}
}

// -volumes threads the array width through the whole matrix; bad values
// are usage errors.
func TestRunArrayMatrix(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-summary", "-intervals", "3", "-volumes", "2"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "| workload |") {
		t.Errorf("array matrix produced no headline table:\n%s", out.String())
	}
	for _, args := range [][]string{
		{"-volumes", "0"},
		{"-volumes", "2", "-route-skew", "-2"},
		{"-volumes", "1", "-route-skew", "1.2"},
	} {
		var o, e strings.Builder
		if err := run(t.Context(), append([]string{"-summary", "-intervals", "2"}, args...), &o, &e); !errors.Is(err, cli.ErrUsage) {
			t.Errorf("args %v: err = %v, want cli.ErrUsage", args, err)
		}
	}
}
