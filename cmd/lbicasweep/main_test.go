package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lbica/internal/cli"
	"lbica/internal/sweep"
)

// sweepArgs is a minimal fast grid shared by the smoke tests.
var sweepArgs = []string{"-workloads", "tpcc", "-schemes", "wb,lbica", "-cache-mult", "0.5,1", "-seeds", "1", "-intervals", "4", "-q"}

func TestRunTextReport(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), sweepArgs, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "1 workloads × 2 schemes × 2 cache sizes × 1 rates × 1 seeds = 4 runs (4 completed)") {
		t.Errorf("missing grid header, got:\n%s", got)
	}
	for _, want := range []string{"tpcc", "WB", "LBICA", "vs WB"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), append([]string{"-format", "csv"}, sweepArgs...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.ParseCellsCSV(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("emitted CSV does not parse back: %v\n%s", err, out.String())
	}
	if len(cells) != 4 {
		t.Errorf("got %d cells, want 4", len(cells))
	}
}

func TestRunJSONFormat(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), append([]string{"-format", "json"}, sweepArgs...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var res sweep.Result
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("emitted JSON does not decode: %v", err)
	}
	if res.Completed != 4 || len(res.Runs) != 4 || len(res.Cells) != 4 {
		t.Errorf("decoded result = %d completed, %d runs, %d cells; want 4 each",
			res.Completed, len(res.Runs), len(res.Cells))
	}
}

// TestRunOutArtifacts: -out writes the cells CSV and the full JSON, and
// the CSV on disk parses back to the same cells as a -format csv run.
func TestRunOutArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	var out, errBuf strings.Builder
	if err := run(t.Context(), append([]string{"-out", dir}, sweepArgs...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "sweep_cells.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fromFile, err := sweep.ParseCellsCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	var csvOut strings.Builder
	if err := run(t.Context(), append([]string{"-format", "csv"}, sweepArgs...), &csvOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	fromStdout, err := sweep.ParseCellsCSV(strings.NewReader(csvOut.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, fromStdout) {
		t.Errorf("-out artifact diverges from -format csv output")
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep.json")); err != nil {
		t.Errorf("sweep.json artifact missing: %v", err)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-h"}, &out, &errBuf); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "Usage of lbicasweep") {
		t.Errorf("-h did not print usage:\n%s", errBuf.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-cache-mult", "a,b"},
		{"-rate", "1,,nope"},
		{"-burst-mult", "2x"},
	} {
		var out, errBuf strings.Builder
		if err := run(t.Context(), args, &out, &errBuf); !errors.Is(err, cli.ErrUsage) {
			t.Errorf("%v returned %v, want cli.ErrUsage", args, err)
		}
	}
}

// TestRunRejectsSilentClampCandidates: values that earlier versions
// silently rewrote to defaults (negative interval counts, lengths and
// replicate counts, zero multipliers) must now surface as errors.
func TestRunRejectsSilentClampCandidates(t *testing.T) {
	for _, args := range [][]string{
		{"-intervals", "-5"},
		{"-interval", "-1s"},
		{"-seeds", "-2"},
		{"-rate", "0"},
		{"-burst-mult", "0"},
		{"-burst-mult", "-1"},
		{"-cache-mult", "0"},
		{"-warmup", "-1"},
		{"-ci-tol", "-0.5"},
		{"-ci-tol", "NaN"},
	} {
		var out, errBuf strings.Builder
		err := run(t.Context(), append(append([]string{}, args...), "-q"), &out, &errBuf)
		if err == nil {
			t.Errorf("%v ran instead of erroring", args)
		}
		if out.Len() != 0 {
			t.Errorf("%v produced a report despite the invalid axis:\n%s", args, out.String())
		}
	}
}

// TestRunSeriesDirSmoke: the -series-dir flag writes one parseable
// per-interval CSV per run of a tiny grid, and -workload (the singular
// alias) accepts catalog names with a burst axis.
func TestRunSeriesDirSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "series")
	var out, errBuf strings.Builder
	args := []string{"-workload", "burst-mix-hi", "-schemes", "wb,lbica",
		"-burst-mult", "1,2", "-intervals", "4", "-series-dir", dir, "-q"}
	if err := run(t.Context(), args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 { // 1 workload × 2 schemes × 2 bursts × 1 seed
		t.Fatalf("got %d series files, want 4", len(ents))
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
		if !strings.HasPrefix(lines[0], "interval,cache_load_us,disk_load_us,hit_ratio,group,policy") {
			t.Errorf("%s: unexpected header %q", e.Name(), lines[0])
		}
		if len(lines)-1 != 4 {
			t.Errorf("%s: %d data rows, want the 4 intervals", e.Name(), len(lines)-1)
		}
	}
	if !strings.Contains(out.String(), "burst×") {
		t.Errorf("burst-axis report missing the burst column:\n%s", out.String())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(), []string{"-workloads", "nope", "-intervals", "2", "-q"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("got %v, want unknown-workload error", err)
	}
}

// TestRunCancelledBeforeStart: a context cancelled before any run
// completes yields the error, not an empty report.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var out, errBuf strings.Builder
	if err := run(ctx, sweepArgs, &out, &errBuf); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Errorf("cancelled-before-start run still produced a report:\n%s", out.String())
	}
}

// Smoke: -cpuprofile/-memprofile must write non-empty profile files.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errBuf strings.Builder
	args := append(append([]string{}, sweepArgs...), "-cpuprofile", cpu, "-memprofile", mem)
	if err := run(t.Context(), args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// The array axes reach the sweep: -volumes/-route-skew must expand the
// grid and surface in the emitted CSV's array layout.
func TestRunArrayAxes(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workloads", "tpcc", "-schemes", "wb,lbica", "-volumes", "2,4",
			"-route-skew", "0,1.2", "-intervals", "3", "-format", "csv", "-q"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if !strings.Contains(lines[0], "volumes,route_skew") {
		t.Fatalf("array sweep emitted header %q without array columns", lines[0])
	}
	if got, want := len(lines)-1, 2*2*2; got != want {
		t.Errorf("emitted %d cells, want %d", got, want)
	}
	// Bad axis values are usage errors, not silent rewrites.
	for _, args := range [][]string{
		{"-volumes", "0"},
		{"-volumes", "x"},
		{"-volumes", "2", "-route-skew", "-1"},
		{"-volumes", "2", "-route-variant", "nope"},
	} {
		var o, e strings.Builder
		if err := run(t.Context(), append(args, "-intervals", "2", "-q"), &o, &e); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// -ci-tol drives the adaptive scheduler end to end: a loose tolerance
// stops replicates at the CI floor, the text report carries the
// early-termination summary, and stderr logs the count.
func TestRunCITol(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workloads", "tpcc", "-schemes", "wb,lbica", "-seeds", "4",
			"-intervals", "4", "-ci-tol", "1000"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "early termination: 2 of 2 cells stopped below 4 replicates (ci tolerance 1000)") {
		t.Errorf("report missing the early-termination summary:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "early termination:") {
		t.Errorf("stderr missing the early-termination count:\n%s", errBuf.String())
	}
}

// -warmup surfaces the warm plan's outcome counts on stderr, so a sweep
// that silently stopped sharing is visible.
func TestRunWarmPlanLog(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workloads", "tpcc", "-schemes", "wb,sib,lbica",
			"-intervals", "6", "-warmup", "2"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "warm plan: 1 leader,") {
		t.Errorf("stderr missing the warm-plan summary:\n%s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "sib ×1") {
		t.Errorf("stderr missing the sib fallback count:\n%s", errBuf.String())
	}
}

// -warm-cache: the first invocation stores the warmup prefixes (the
// shared leader prefix and the scratch SIB member's private one), the
// second restores both, both emit byte-identical reports, and the stderr
// warm-plan line carries the cache tallies.
func TestRunWarmCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "warm-cache")
	args := []string{"-workloads", "tpcc", "-schemes", "wb,sib,lbica",
		"-intervals", "6", "-warmup", "2", "-warm-cache", dir, "-format", "csv"}

	var out1, err1 strings.Builder
	if err := run(t.Context(), args, &out1, &err1); err != nil {
		t.Fatalf("first run: %v (stderr: %s)", err, err1.String())
	}
	if !strings.Contains(err1.String(), "cache: 0 hit, 2 stored") {
		t.Errorf("first run stderr missing the store tally:\n%s", err1.String())
	}

	var out2, err2 strings.Builder
	if err := run(t.Context(), args, &out2, &err2); err != nil {
		t.Fatalf("second run: %v (stderr: %s)", err, err2.String())
	}
	if !strings.Contains(err2.String(), "cache: 2 hit, 0 stored") {
		t.Errorf("second run stderr missing the hit tally:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cache hit changed the emitted report:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
}

// -warm-cache validation is eager: a missing -warmup and an unusable
// directory are flag-parse failures, before any simulation starts.
func TestRunWarmCacheValidation(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(), []string{"-warm-cache", t.TempDir(), "-q"}, &out, &errBuf)
	if !errors.Is(err, cli.ErrUsage) {
		t.Errorf("-warm-cache without -warmup returned %v, want cli.ErrUsage", err)
	}
	if !strings.Contains(errBuf.String(), "-warmup") {
		t.Errorf("stderr does not explain the -warmup requirement:\n%s", errBuf.String())
	}

	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	err = run(t.Context(), []string{"-warmup", "2", "-warm-cache", file, "-q"}, &out, &errBuf)
	if !errors.Is(err, cli.ErrUsage) {
		t.Errorf("-warm-cache over a regular file returned %v, want cli.ErrUsage", err)
	}
	if out.Len() != 0 {
		t.Errorf("invalid cache dir still produced a report:\n%s", out.String())
	}
}

// A mixed-width grid with a non-zero skew runs in one invocation: skew is
// inert at one volume, so the width-1 cells canonicalize to skew 0 and
// the collapsed combinations land in the log instead of failing the run.
func TestRunMixedWidthSkew(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workloads", "tpcc", "-schemes", "wb", "-volumes", "1,4",
			"-route-skew", "0,1.2", "-intervals", "2", "-format", "csv"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	// 3 cells survive: (1,0), (4,0), (4,1.2) — the (1,1.2) combo collapses.
	if got, want := len(strings.Split(strings.TrimSpace(out.String()), "\n"))-1, 3; got != want {
		t.Errorf("emitted %d cells, want %d:\n%s", got, want, out.String())
	}
	if !strings.Contains(errBuf.String(), "skipped") || !strings.Contains(errBuf.String(), "1.2") {
		t.Errorf("stderr does not log the collapsed combination:\n%s", errBuf.String())
	}
}
