// Command lbicasweep runs a parameter-sweep grid — workloads × schemes ×
// cache-size multipliers × rate factors × seed replicates — through the
// bounded worker pool and reports per-cell summaries: mean/min/max
// max-queue-time, latency, hit ratio, policy-flip counts, and
// LBICA-vs-WB / LBICA-vs-SIB speedups.
//
// The paper evaluates a fixed 3 workloads × 3 schemes matrix; lbicasweep
// generalizes it along the axes the claims should be robust to. Every
// scheme inside a seed replicate shares the replicate's seed, so schemes
// always see an identical workload (the paper's controlled comparison),
// and output is byte-identical for every -workers value. Ctrl-C cancels
// the sweep at the next event boundary and emits a partial report over
// the runs that completed.
//
// # Usage
//
// Sweep the full paper matrix across three cache sizes, three arrival
// rates and three seeds (3×3×3×3×3 runs), with progress on stderr:
//
//	lbicasweep -cache-mult 0.5,1,2 -rate 0.8,1,1.2 -seeds 3
//
// Restrict the axes and pick the output format:
//
//	lbicasweep -workloads tpcc -schemes wb,lbica -cache-mult 0.5,1,2 -format csv
//	lbicasweep -seeds 5 -format json > sweep.json
//
// Write the machine-readable artifacts (cells CSV + full JSON) into a
// directory while keeping the text report on stdout:
//
//	lbicasweep -cache-mult 0.5,1,2 -out results/sweep
//
// Shorten runs for a quick look (the paper runs 200 intervals; 20 is a
// coarse but fast preview), serial baseline for determinism checks:
//
//	lbicasweep -intervals 20 -workers 1
//
// -warmup shares one simulated warmup prefix across all schemes of a
// grid coordinate: the prefix runs once and each scheme's run is forked
// from the warm state. Output bytes are identical to -warmup 0; only
// wall-clock time shrinks:
//
//	lbicasweep -warmup 50
//
// -warm-cache persists those shared warmup prefixes across invocations:
// each prefix is looked up in the content-addressed checkpoint store at
// DIR before being simulated and written through after, so re-running a
// sweep — narrowing axes, adding seeds, recovering from an interrupt —
// skips the warmup simulation entirely on the second pass. Output bytes
// stay identical; corrupt or stale cache entries fall back to simulation
// and are overwritten. Requires -warmup:
//
//	lbicasweep -warmup 50 -warm-cache ~/.cache/lbica-warm
//
// -ci-tol turns on cross-cell early termination: a grid coordinate stops
// launching further seed replicates once every scheme's 95% confidence
// half-width over the q-mean metric is within this fraction of its mean
// (at least two replicates always run), and the freed worker slot moves
// on to unfinished coordinates. Terminated cells are marked in the
// output with their achieved half-width and actual replicate count:
//
//	lbicasweep -seeds 8 -ci-tol 0.05
//
// Beyond the paper trio, -workload accepts any workload-catalog name —
// synthetic primitives (synth-randread, synth-seqwrite, ...), Zipf-
// parameterized variants (synth-randread-zipf1.2) and the burst-mix
// family whose ON-rate multiple, duty cycle and read ratio ride in the
// name (burst-mix-hi, burst-mix-on6x-duty0.45-read0.35). -burst-mult adds
// the burst-intensity axis (scaling every bursting phase's ON rate and
// duty cycle), and -series-dir exports each cell's per-interval timeline:
//
//	lbicasweep -workload synth-randread-zipf1.2,burst-mix-hi \
//	    -burst-mult 0.5,1,2 -series-dir out/
//
// -volumes shards every run across an array of independent cache+disk
// volumes behind a deterministic router (volume-per-core), and
// -route-skew Zipf-skews the router's volume popularity — the
// imbalanced-fleet regime:
//
//	lbicasweep -workloads tpcc -schemes wb,lbica -volumes 2,4 -route-skew 0,1.2
//
// Skew is inert at one volume, so mixed-width grids work in one
// invocation — width-1 cells canonicalize to the skew-0 cell and the
// collapsed combinations are logged, not fatal:
//
//	lbicasweep -volumes 1,4 -route-skew 0,1.2
//
// Scheme array-lb adds the array-level controller (adaptive routing +
// hot-block migration) on top of per-volume LBICA; -route-variant picks
// its routing mechanism:
//
//	lbicasweep -workloads tpcc -schemes lbica,array-lb -volumes 3 \
//	    -route-skew 1.2 -route-variant weighted
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lbica"
	"lbica/internal/checkpoint"
	"lbica/internal/cli"
	"lbica/internal/experiments"
)

func main() { cli.Main("lbicasweep", run) }

// splitList parses a comma-separated flag value ("" = nil).
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitInts parses a comma-separated integer list ("" = nil).
func splitInts(s string) ([]int, error) {
	parts := splitList(s)
	if parts == nil {
		return nil, nil
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// splitFloats parses a comma-separated float list ("" = nil).
func splitFloats(s string) ([]float64, error) {
	parts := splitList(s)
	if parts == nil {
		return nil, nil
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q in list %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// run is the testable body of main: flags in, report out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbicasweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names, patterns := experiments.WorkloadCatalog()
	workloadHelp := "comma list of workload-catalog names (empty = the paper trio): " +
		strings.Join(names, ",") + "; families: " + strings.Join(patterns, ", ")
	var workloads string
	fs.StringVar(&workloads, "workloads", "", workloadHelp)
	fs.StringVar(&workloads, "workload", "", "alias for -workloads")
	var (
		schemes      = fs.String("schemes", "", "comma list of schemes: wb,sib,lbica,array-lb (empty = the paper trio wb,sib,lbica)")
		cacheMult    = fs.String("cache-mult", "1", "comma list of cache-size multipliers (1 = the paper's 256 MiB)")
		rate         = fs.String("rate", "1", "comma list of workload IOPS scale factors")
		burstMult    = fs.String("burst-mult", "1", "comma list of burst-intensity multipliers scaling every bursting phase's ON rate and duty cycle (1 = the published burst shapes)")
		volumes      = fs.String("volumes", "1", "comma list of array widths: shard each run across this many independent cache+disk volumes (1 = the paper's single stack)")
		routeSkew    = fs.String("route-skew", "0", "comma list of router Zipf skews over volume popularity (0 = uniform routing; inert at one volume — width-1 cells collapse to skew 0)")
		routeVariant = fs.String("route-variant", "", "array-lb controller routing mechanism: weighted|p2c (empty = weighted; other schemes ignore it)")
		seeds        = fs.Int("seeds", 1, "seed replicates per cell (replicate seeds derive from -seed)")
		seed         = fs.Int64("seed", 1, "base random seed")
		intervals    = fs.Int("intervals", 0, "monitor intervals per run (0 = paper default per workload)")
		interval     = fs.Duration("interval", 200*time.Millisecond, "monitor interval length (virtual time)")
		warmup       = fs.Int("warmup", 0, "shared-warmup intervals: schemes at the same grid coordinate share one simulated warmup prefix of this length via state forking (0 = off; output bytes are identical either way)")
		warmCache    = fs.String("warm-cache", "", "persist shared warmup prefixes in the checkpoint store at this directory (created if absent) and restore them on later invocations; requires -warmup, output bytes are identical either way")
		ciTol        = fs.Float64("ci-tol", 0, "relative confidence tolerance for early termination: stop a coordinate's seed replicates once every scheme's 95% CI half-width over the q-mean metric is within this fraction of its mean (0 = off, run every replicate; needs -seeds > 2 to save anything)")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		format       = fs.String("format", "text", "stdout format: text|csv|json")
		out          = fs.String("out", "", "also write sweep_cells.csv and sweep.json into this directory")
		seriesDir    = fs.String("series-dir", "", "write each cell's per-interval series (cache/disk load, hit ratio, group, policy) as one CSV into this directory")
		quiet        = fs.Bool("q", false, "suppress the progress log on stderr")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile (post-sweep) to this file")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, "lbicasweep: profile:", err)
		}
	}()
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(stderr, "lbicasweep: unknown -format %q (want text|csv|json)\n", *format)
		return cli.ErrUsage
	}
	mults, err := splitFloats(*cacheMult)
	if err != nil {
		fmt.Fprintln(stderr, "lbicasweep: -cache-mult:", err)
		return cli.ErrUsage
	}
	rates, err := splitFloats(*rate)
	if err != nil {
		fmt.Fprintln(stderr, "lbicasweep: -rate:", err)
		return cli.ErrUsage
	}
	bursts, err := splitFloats(*burstMult)
	if err != nil {
		fmt.Fprintln(stderr, "lbicasweep: -burst-mult:", err)
		return cli.ErrUsage
	}
	vols, err := splitInts(*volumes)
	if err != nil {
		fmt.Fprintln(stderr, "lbicasweep: -volumes:", err)
		return cli.ErrUsage
	}
	skews, err := splitFloats(*routeSkew)
	if err != nil {
		fmt.Fprintln(stderr, "lbicasweep: -route-skew:", err)
		return cli.ErrUsage
	}
	if *warmCache != "" {
		// Eager validation, before any simulation: a cache directory that
		// is missing gets created now, and one that can never work (a
		// regular file in the way, an unwritable parent) fails the
		// invocation at flag-parse time instead of mid-sweep.
		if *warmup <= 0 {
			fmt.Fprintln(stderr, "lbicasweep: -warm-cache requires -warmup > 0 (the cache stores shared warmup prefixes)")
			return cli.ErrUsage
		}
		if _, err := checkpoint.Open(*warmCache); err != nil {
			fmt.Fprintln(stderr, "lbicasweep: -warm-cache:", err)
			return cli.ErrUsage
		}
	}

	grid := lbica.GridSpec{
		Workloads:       splitList(workloads),
		Schemes:         splitList(*schemes),
		CacheMults:      mults,
		RateFactors:     rates,
		BurstMults:      bursts,
		Volumes:         vols,
		RouteSkews:      skews,
		RouteVariant:    *routeVariant,
		SeedReplicates:  *seeds,
		Seed:            *seed,
		Intervals:       *intervals,
		IntervalLength:  *interval,
		WarmupIntervals: *warmup,
		WarmCacheDir:    *warmCache,
		CITolerance:     *ciTol,
	}
	opt := lbica.SweepOptions{Workers: *workers, SeriesDir: *seriesDir}
	start := time.Now()
	if !*quiet {
		opt.OnProgress = func(done, total int) {
			fmt.Fprintf(stderr, "  %d/%d runs done (%v)\n", done, total, time.Since(start).Round(time.Millisecond))
		}
	}

	res, runErr := lbica.Sweep(ctx, grid, opt)
	// An interrupted sweep still reports the runs that finished; a sweep
	// with nothing completed has no report worth rendering.
	if runErr != nil && (res == nil || res.Completed == 0) {
		return runErr
	}
	if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "lbicasweep: sweep interrupted — partial report over %d/%d runs follows\n",
			res.Completed, res.Total)
	}
	if !*quiet {
		// Combinations the expansion canonicalized away (inert skew at
		// width 1) are a notice, not an error — the text report repeats
		// them, but csv/json stdout would swallow them silently.
		for _, s := range res.Skipped {
			fmt.Fprintln(stderr, "lbicasweep: skipped:", s)
		}
		// The warm plan's hit rate: without it a sharing regression (say,
		// every cell silently falling back to scratch) only shows up as an
		// unexplained slowdown.
		if res.Warm != nil {
			fmt.Fprintf(stderr, "lbicasweep: warm plan: %d leader, %d forked, %d scratch%s%s\n",
				res.Warm.Leaders, res.Warm.Forked, res.Warm.Scratch,
				fallbackSummary(res.Warm.Fallbacks), cacheSummary(res.Warm))
		}
		if grid.CITolerance > 0 {
			reps := grid.SeedReplicates
			if reps < 1 {
				reps = 1
			}
			term, saved := 0, 0
			for _, c := range res.Cells {
				if c.EarlyTerminated {
					term++
					saved += reps - c.Replicates
				}
			}
			fmt.Fprintf(stderr, "lbicasweep: early termination: %d/%d cells stopped early, %d replicate runs saved\n",
				term, len(res.Cells), saved)
		}
	}

	var emitErr error
	switch *format {
	case "csv":
		emitErr = res.WriteCSV(stdout)
	case "json":
		emitErr = res.WriteJSON(stdout)
	default:
		emitErr = res.WriteReport(stdout)
	}

	var outErr error
	if *out != "" {
		// Notices go to stderr: with -format csv/json, stdout is a
		// machine-readable stream that trailing "wrote ..." lines would
		// corrupt.
		outErr = writeArtifacts(*out, res, stderr)
	}
	if *seriesDir != "" {
		// Count what actually landed on disk: the export can fail (bad
		// path, full disk) with its error folded into runErr, and claiming
		// res.Completed files were written would contradict that error.
		if n := countSeriesFiles(*seriesDir); n > 0 {
			fmt.Fprintf(stderr, "wrote %d per-interval series files into %s\n", n, *seriesDir)
		}
	}
	return errors.Join(runErr, emitErr, outErr)
}

// countSeriesFiles returns how many exported series CSVs dir holds (0 on
// any read error).
// fallbackSummary renders the scratch-fallback reasons of a warm plan as
// a parenthesized, deterministically ordered suffix ("" when every run
// shared).
func fallbackSummary(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s ×%d", k, m[k])
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

// cacheSummary renders the persistent warm-cache traffic as a "; cache:"
// suffix for the warm-plan line ("" when no store was configured).
func cacheSummary(w *lbica.SweepWarmStats) string {
	if w.CacheHits == 0 && w.CacheStores == 0 && w.CacheCorrupt == 0 {
		return ""
	}
	s := fmt.Sprintf("; cache: %d hit, %d stored", w.CacheHits, w.CacheStores)
	if w.CacheCorrupt > 0 {
		s += fmt.Sprintf(", %d corrupt entries replaced", w.CacheCorrupt)
	}
	return s
}

func countSeriesFiles(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "series_") && strings.HasSuffix(e.Name(), ".csv") {
			n++
		}
	}
	return n
}

// writeArtifacts drops the machine-readable outputs into dir, logging
// each path to the notices writer.
func writeArtifacts(dir string, res *lbica.SweepResult, notices io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, art := range []struct {
		name  string
		write func(io.Writer) error
	}{
		{"sweep_cells.csv", res.WriteCSV},
		{"sweep.json", res.WriteJSON},
	} {
		path := filepath.Join(dir, art.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := art.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(notices, "wrote", path)
	}
	return nil
}
