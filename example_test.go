package lbica_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"lbica"
)

// The simplest use: run a paper workload under a scheme and read the
// summary. Runs are deterministic for a fixed seed, so this example's
// output is stable.
func Example() {
	report, err := lbica.Run(lbica.Options{
		Workload:       lbica.WorkloadTPCC,
		Scheme:         lbica.SchemeLBICA,
		Intervals:      10,
		IntervalLength: 100 * time.Millisecond,
		RateFactor:     0.25, // light load for a fast example
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Workload, "under", report.Scheme)
	fmt.Println("intervals simulated:", len(report.Intervals))
	fmt.Println("all requests served:", report.Summary.Requests > 0)
	// Output:
	// tpcc under LBICA
	// intervals simulated: 10
	// all requests served: true
}

// Comparing schemes on an identical request stream: same seed → same
// workload, so differences are attributable to the scheme alone.
func ExampleRun_comparison() {
	var latencies []time.Duration
	for _, scheme := range []string{lbica.SchemeWB, lbica.SchemeLBICA} {
		report, err := lbica.Run(lbica.Options{
			Workload:       lbica.WorkloadMail,
			Scheme:         scheme,
			Seed:           42,
			Intervals:      20,
			IntervalLength: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		latencies = append(latencies, report.Summary.AvgLatency)
	}
	fmt.Println("comparison ran:", len(latencies) == 2)
	// Output:
	// comparison ran: true
}

// Custom workloads are schedules of phases; each phase is an ON/OFF
// modulated arrival process over a Zipf-skewed working set.
func ExampleRun_customWorkload() {
	report, err := lbica.Run(lbica.Options{
		Name:   "nightly-backup",
		Scheme: lbica.SchemeLBICA,
		Phases: []lbica.Phase{
			{
				Name: "oltp-day", Duration: 500 * time.Millisecond,
				BaseIOPS: 2000, ReadRatio: 0.8,
				WorkingSetBlocks: 32 * 1024, ZipfExponent: 1.0,
			},
			{
				Name: "backup-scan", Duration: 500 * time.Millisecond,
				BaseIOPS: 4000, ReadRatio: 1.0, Sequential: 0.95,
				WorkingSetBlocks: 1 << 20,
			},
		},
		Intervals:      10,
		IntervalLength: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Workload)
	// Output:
	// nightly-backup
}

// Batches of independent runs fan out across the runner's worker pool.
// Reports come back in spec order and are byte-identical to running the
// specs one at a time, whatever the worker count.
func ExampleRunAll() {
	specs := []lbica.Options{
		{Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeWB},
		{Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeLBICA},
	}
	for i := range specs {
		// A shared explicit seed keeps the request stream identical across
		// schemes — the controlled comparison. (RunnerOptions.Seed instead
		// splits an isolated stream per spec, for replication sweeps.)
		specs[i].Seed = 7
		specs[i].Intervals = 10
		specs[i].IntervalLength = 100 * time.Millisecond
		specs[i].RateFactor = 0.25
	}
	reports, err := lbica.RunAll(context.Background(), specs, lbica.RunnerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r.Workload, "under", r.Scheme, "- served:", r.Summary.Requests > 0)
	}
	// Output:
	// tpcc under WB - served: true
	// tpcc under LBICA - served: true
}

// A declarative parameter sweep: generalize the paper's fixed matrix
// along cache size and seed, and read the aggregated cells. Expansion
// order, execution, and aggregation are all deterministic, so the cell
// layout is stable for a fixed grid.
func ExampleSweep() {
	res, err := lbica.Sweep(context.Background(), lbica.GridSpec{
		Workloads:      []string{lbica.WorkloadTPCC},
		Schemes:        []string{lbica.SchemeWB, lbica.SchemeLBICA},
		CacheMults:     []float64{0.5, 1},
		SeedReplicates: 2,
		Seed:           7,
		Intervals:      8,
	}, lbica.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("runs:", res.Completed, "of", res.Total)
	for _, c := range res.Cells {
		fmt.Printf("%s/%s cache ×%g - %d replicates, served: %t\n",
			c.Workload, c.Scheme, c.CacheMult, c.Replicates, c.QMeanUS > 0)
	}
	// Output:
	// runs: 8 of 8
	// tpcc/WB cache ×0.5 - 2 replicates, served: true
	// tpcc/LBICA cache ×0.5 - 2 replicates, served: true
	// tpcc/WB cache ×1 - 2 replicates, served: true
	// tpcc/LBICA cache ×1 - 2 replicates, served: true
}
